// Package flair builds the FLAIR-substitute workload of §6.4: a multi-label
// federated image dataset spanning a long tail of device types. FLAIR
// (Song et al., 2022) contains end-user photos from more than one thousand
// device models; here each "device type" is a randomly drawn camera+ISP
// profile (internal/device.Random) and each image is a multi-object
// composition whose per-class presence must be predicted.
package flair

import (
	"fmt"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/device"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/scene"
)

// Config sizes the generated federation.
type Config struct {
	NumDeviceTypes   int // distinct device profiles (FLAIR: >1000; scaled down)
	SamplesPerDevice int // training images captured per device type
	TestPerDevice    int // held-out images per device type
	Classes          int // label-space size (12 to match the scene recipes)
	OutRes           int // final tensor resolution
	Seed             uint64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		NumDeviceTypes:   24,
		SamplesPerDevice: 12,
		TestPerDevice:    6,
		Classes:          12,
		OutRes:           32,
		Seed:             1,
	}
}

// Federation is the generated multi-label federated dataset.
type Federation struct {
	Devices []*device.Profile
	// Train and Test are indexed by device type.
	Train map[int]*dataset.Dataset
	Test  map[int]*dataset.Dataset
}

// Build generates the federation. Every device type gets its own randomly
// drawn profile and its own captured multi-label images.
func Build(cfg Config) (*Federation, error) {
	if cfg.NumDeviceTypes <= 0 || cfg.SamplesPerDevice <= 0 {
		return nil, fmt.Errorf("flair: non-positive sizing: %+v", cfg)
	}
	rng := frand.New(cfg.Seed)
	gen := scene.NewImageNet12(64)
	if cfg.Classes != gen.NumClasses() {
		return nil, fmt.Errorf("flair: classes %d unsupported (scene recipes provide %d)", cfg.Classes, gen.NumClasses())
	}
	fed := &Federation{
		Train: map[int]*dataset.Dataset{},
		Test:  map[int]*dataset.Dataset{},
	}
	for d := 0; d < cfg.NumDeviceTypes; d++ {
		prof := device.Random(rng.Split(), fmt.Sprintf("flair-dev-%03d", d))
		fed.Devices = append(fed.Devices, prof)
		capture := func(n int) (*dataset.Dataset, error) {
			ds := &dataset.Dataset{NumClasses: cfg.Classes}
			for i := 0; i < n; i++ {
				im, labels := gen.MultiLabelScene(rng)
				shot, err := prof.CaptureProcessed(im, rng)
				if err != nil {
					return nil, fmt.Errorf("flair: device %d: %w", d, err)
				}
				ds.Samples = append(ds.Samples, dataset.Sample{
					X:      shot.Resize(cfg.OutRes, cfg.OutRes).ToTensor(),
					Label:  -1,
					Multi:  labels,
					Device: d,
				})
			}
			return ds, nil
		}
		tr, err := capture(cfg.SamplesPerDevice)
		if err != nil {
			return nil, err
		}
		te, err := capture(cfg.TestPerDevice)
		if err != nil {
			return nil, err
		}
		fed.Train[d] = tr
		fed.Test[d] = te
	}
	return fed, nil
}

// AllTest concatenates every device's test set (device tags preserved).
func (f *Federation) AllTest() *dataset.Dataset {
	all := make([]*dataset.Dataset, 0, len(f.Test))
	for d := 0; d < len(f.Devices); d++ {
		all = append(all, f.Test[d])
	}
	return dataset.Concat(all...)
}
