package serve

import (
	"sync"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// testBuilder is a conv+BN model so the frozen fold is exercised on every
// version reload.
func testBuilder() func() *nn.Network {
	return func() *nn.Network {
		r := frand.New(7)
		return nn.NewNetwork(
			nn.NewConv2D(r, 1, 4, 3, 1, 1, 1),
			nn.NewBatchNorm2D(4),
			nn.NewReLU(),
			nn.NewGlobalAvgPool(),
			nn.NewDense(r, 4, 3),
		)
	}
}

func testWeights(t testing.TB) nn.Weights {
	t.Helper()
	return testBuilder()().Snapshot()
}

func testInputs(n int) []*tensor.Tensor {
	r := frand.New(17)
	bank := make([]*tensor.Tensor, n)
	for i := range bank {
		bank[i] = tensor.Randn(r, 0.5, 1, 8, 8)
	}
	return bank
}

func testServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(testBuilder(), testWeights(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustLoad(t testing.TB, cfg Config, lc LoadConfig) Report {
	t.Helper()
	rep, err := testServer(t, cfg).RunLoad(lc)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func requireSameReport(t *testing.T, a, b Report, what string) {
	t.Helper()
	if a.OutputDigest != b.OutputDigest {
		t.Fatalf("%s: output digests differ: %016x vs %016x", what, a.OutputDigest, b.OutputDigest)
	}
	if !a.Hist.Equal(&b.Hist) {
		t.Fatalf("%s: latency histograms differ:\n%s\nvs\n%s", what, a.Hist.String(), b.Hist.String())
	}
	if a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 || a.MeanLatency != b.MeanLatency {
		t.Fatalf("%s: quantiles differ: %+v vs %+v", what, a, b)
	}
	if a.VirtualTime != b.VirtualTime || a.Batches != b.Batches || a.Requests != b.Requests {
		t.Fatalf("%s: schedules differ: %+v vs %+v", what, a, b)
	}
	if a.String() != b.String() {
		t.Fatalf("%s: rendered reports differ", what)
	}
}

// Two runs with the same seed and config must be bit-identical end to end:
// per-request outputs (the digest), the full latency histogram, and every
// quantile. This is the harness's reproducibility contract.
func TestLoadDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{MaxBatch: 4, BatchBudget: 0.5, Workers: 2, IntraOp: 2}
	lc := LoadConfig{
		Requests:    300,
		Concurrency: 8,
		Arrival:     ClosedLoop{Think: 0.5, Seed: 9},
		Service:     AffineService{Base: 1, PerItem: 0.25},
		Inputs:      testInputs(16),
	}
	a := mustLoad(t, cfg, lc)
	b := mustLoad(t, cfg, lc)
	requireSameReport(t, a, b, "same seed")
	if a.Requests != lc.Requests {
		t.Fatalf("served %d requests, want %d", a.Requests, lc.Requests)
	}

	// Outputs are content-determined (request i always sends Inputs[i%B]), so
	// a different arrival seed must leave the digest alone but move the
	// schedule.
	lc.Arrival = ClosedLoop{Think: 0.5, Seed: 10}
	c := mustLoad(t, cfg, lc)
	if c.OutputDigest != a.OutputDigest {
		t.Fatal("arrival seed changed request outputs")
	}
	if c.VirtualTime == a.VirtualTime && c.MeanLatency == a.MeanLatency {
		t.Fatal("different arrival seed produced an identical schedule (seed not wired through)")
	}
}

// The frozen replicas are bit-identical at every intra-op budget and the
// schedule is virtual, so the ENTIRE report — outputs, histogram, quantiles,
// virtual time — must be invariant across -intraop. This is the serving
// analogue of the kernel layer's determinism contract.
func TestLoadBitIdenticalAcrossIntraOp(t *testing.T) {
	lc := LoadConfig{
		Requests:    200,
		Concurrency: 6,
		Arrival:     ClosedLoop{Think: 0.2, Seed: 3},
		Service:     AffineService{Base: 1, PerItem: 0.5},
		Inputs:      testInputs(16),
	}
	base := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: 1}, lc)
	for _, intraop := range []int{2, 4, 8} {
		got := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: intraop}, lc)
		requireSameReport(t, base, got, "intraop")
	}
}

// Version churn with identical values must be output-invariant: PublishEvery
// forces replica reloads, early flushes (a forming batch always executes
// under its admission version), and refcount handoff mid-run — the schedule
// may legally shift, but every request's output bits stay the same, churned
// runs stay bit-reproducible, and retired versions recycle instead of
// accumulating.
func TestLoadVersionChurnInvariant(t *testing.T) {
	cfg := Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: 1}
	lc := LoadConfig{
		Requests:    240,
		Concurrency: 8,
		Arrival:     ClosedLoop{Think: 0.1, Seed: 5},
		Service:     AffineService{Base: 1, PerItem: 0.25},
		Inputs:      testInputs(16),
	}
	quiet := mustLoad(t, cfg, lc)

	lc.PublishEvery = 3
	srv := testServer(t, cfg)
	churn, err := srv.RunLoad(lc)
	if err != nil {
		t.Fatal(err)
	}
	if churn.OutputDigest != quiet.OutputDigest {
		t.Fatalf("version churn changed outputs: %016x vs %016x", churn.OutputDigest, quiet.OutputDigest)
	}
	churn2 := mustLoad(t, cfg, lc)
	requireSameReport(t, churn, churn2, "churned run reproducibility")
	if srv.Store().Version() == 0 {
		t.Fatal("PublishEvery never published")
	}
	if live := srv.Store().Live(); live > 2 {
		t.Fatalf("%d versions still resident after the run; churned versions must recycle", live)
	}
}

// Micro-batching must actually batch: saturating closed-loop clients with a
// zero think time coalesce up to MaxBatch, and MaxBatch=1 degenerates to
// one batch per request.
func TestMicroBatchCoalescing(t *testing.T) {
	lc := LoadConfig{
		Requests:    128,
		Concurrency: 8,
		Arrival:     ClosedLoop{Think: 0, Seed: 2},
		Service:     AffineService{Base: 1, PerItem: 0.25},
		Inputs:      testInputs(8),
	}
	batched := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.5, Workers: 1, IntraOp: 1}, lc)
	if batched.MeanBatch < 2 {
		t.Fatalf("mean batch %v under saturation; micro-batcher never coalesced", batched.MeanBatch)
	}
	single := mustLoad(t, Config{MaxBatch: 1, Workers: 1, IntraOp: 1}, lc)
	if single.Batches != lc.Requests {
		t.Fatalf("MaxBatch=1 produced %d batches for %d requests", single.Batches, lc.Requests)
	}
	if batched.OutputDigest != single.OutputDigest {
		t.Fatal("batch size changed request outputs (row independence broken)")
	}
	// Amortizing Base over batches must beat serial dispatch on throughput.
	if batched.Throughput <= single.Throughput {
		t.Fatalf("batching throughput %v not above serial %v despite Base=1 amortization",
			batched.Throughput, single.Throughput)
	}
}

// Open-loop arrivals: the chained process serves exactly Requests requests
// and reproduces bit-identically, like the closed loop.
func TestLoadOpenLoop(t *testing.T) {
	cfg := Config{MaxBatch: 4, BatchBudget: 0.4, Workers: 2, IntraOp: 1}
	lc := LoadConfig{
		Requests: 200,
		Arrival:  OpenLoop{Rate: 2, Seed: 11},
		Service:  AffineService{Base: 0.5, PerItem: 0.25},
		Inputs:   testInputs(16),
	}
	a := mustLoad(t, cfg, lc)
	b := mustLoad(t, cfg, lc)
	requireSameReport(t, a, b, "open loop")
	if a.Requests != lc.Requests {
		t.Fatalf("served %d requests, want %d", a.Requests, lc.Requests)
	}
}

// The steady-state event loop — admission, batching, real frozen inference,
// completion, closed-loop rescheduling — must be allocation-free once
// beginLoad's warmup has populated every pool. This is the serving side of
// the repo's 0-alloc hot-path contract.
func TestLoadSteadyStateZeroAlloc(t *testing.T) {
	srv := testServer(t, Config{MaxBatch: 4, BatchBudget: 0.2, Workers: 2, IntraOp: 1})
	lc := LoadConfig{
		Requests:    50000,
		Concurrency: 8,
		Arrival:     ClosedLoop{Think: 0.1, Seed: 13},
		Service:     AffineService{Base: 1, PerItem: 0.25},
		Inputs:      testInputs(16),
	}
	if err := srv.beginLoad(lc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ { // warm the event map, heap, queue, and arenas
		if !srv.step() {
			t.Fatal("run finished during warmup; raise Requests")
		}
	}
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc counts are nondeterministic")
	}
	allocs := testing.AllocsPerRun(2000, func() {
		srv.step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state step allocates %v/op, want 0", allocs)
	}
}

// PredictInto under real concurrency: many goroutines share the replica pool
// while the store republishes (same values, new versions) — outputs must
// match the serial reference bit-for-bit and the version refcounts must
// drain. Run with -race this is the front door's data-race test.
func TestPredictIntoConcurrent(t *testing.T) {
	srv := testServer(t, Config{MaxBatch: 4, Workers: 3, IntraOp: 1})
	// PredictInto takes the input as-is: shape it as a batch of one.
	inputs := testInputs(8)
	for i, x := range inputs {
		inputs[i] = tensor.FromSlice(x.Data(), 1, 1, 8, 8)
	}

	ref := nn.NewReplica(testBuilder(), 1)
	_, w := srv.Store().Acquire()
	if err := ref.Ensure(0, w); err != nil {
		t.Fatal(err)
	}
	srv.Store().Release(0)
	want := make([][]float32, len(inputs))
	for i, x := range inputs {
		want[i] = append([]float32(nil), ref.Infer(x).Data()...)
	}

	const goroutines, perG = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]float32, len(want[0]))
			for i := 0; i < perG; i++ {
				k := (g + i) % len(inputs)
				if _, _, err := srv.PredictInto(dst, inputs[k]); err != nil {
					errs <- err
					return
				}
				for j := range dst {
					if dst[j] != want[k][j] {
						t.Errorf("goroutine %d: output[%d] = %v, want %v", g, j, dst[j], want[k][j])
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		srv.Store().Republish()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if live := srv.Store().Live(); live != 1 {
		t.Fatalf("%d versions resident after all requests drained, want 1", live)
	}
}

// The serving contract under the packed matmul backend: packed-forced runs
// are bit-reproducible and intraop-invariant (packed kernels row-partition a
// shared packed panel, so budgets never change output bits), the virtual-time
// schedule is backend-invariant (service costs don't depend on output values),
// and per-request predictions agree with the serial oracle backend on argmax
// within the frozen path's tolerance tier.
func TestLoadBackendContract(t *testing.T) {
	forceBackend := func(b tensor.Backend) func() {
		prev := tensor.ActiveBackend()
		tensor.SetBackend(b)
		return func() { tensor.SetBackend(prev) }
	}

	lc := LoadConfig{
		Requests:    200,
		Concurrency: 6,
		Arrival:     ClosedLoop{Think: 0.2, Seed: 3},
		Service:     AffineService{Base: 1, PerItem: 0.5},
		Inputs:      testInputs(16),
	}

	restore := forceBackend(tensor.BackendSerial)
	serial := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: 1}, lc)
	restore()

	restore = forceBackend(tensor.BackendPacked)
	packed := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: 1}, lc)
	again := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: 1}, lc)
	requireSameReport(t, packed, again, "packed reruns")
	for _, intraop := range []int{2, 4} {
		got := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: intraop}, lc)
		requireSameReport(t, packed, got, "packed intraop")
	}
	restore()

	// The schedule (not the output bits) must be identical across backends.
	if serial.VirtualTime != packed.VirtualTime || serial.Batches != packed.Batches ||
		serial.Requests != packed.Requests || !serial.Hist.Equal(&packed.Hist) {
		t.Fatalf("schedule depends on kernel backend: serial %+v vs packed %+v", serial, packed)
	}

	// Per-request outputs: packed sits in the tolerance tier — close to the
	// serial oracle and identical on argmax for every bank input.
	inputs := testInputs(16)
	infer := func(b tensor.Backend, x *tensor.Tensor) []float32 {
		restore := forceBackend(b)
		defer restore()
		rep := nn.NewReplica(testBuilder(), 1)
		if err := rep.Ensure(0, testWeights(t)); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), rep.Infer(tensor.FromSlice(x.Data(), 1, 1, 8, 8)).Data()...)
	}
	for i, x := range inputs {
		so := infer(tensor.BackendSerial, x)
		po := infer(tensor.BackendPacked, x)
		argmax := func(v []float32) int {
			best := 0
			for j := range v {
				if v[j] > v[best] {
					best = j
				}
			}
			return best
		}
		if argmax(so) != argmax(po) {
			t.Fatalf("input %d: packed argmax %d != serial argmax %d (%v vs %v)", i, argmax(po), argmax(so), po, so)
		}
		for j := range so {
			if d := so[j] - po[j]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("input %d output[%d]: packed %v vs serial %v exceeds tolerance", i, j, po[j], so[j])
			}
		}
	}
}

// The serving contract under the forced int8 backend: quantized runs must be
// bit-reproducible (the report digest pins every output bit), invariant
// across intra-op budgets — integer accumulation is exact, so there is no
// reassociation to leak through — and the virtual-time schedule must match
// the serial oracle's. Per-request predictions agree with the serial oracle
// on argmax within the int8 tier's documented tolerance.
func TestLoadInt8BackendContract(t *testing.T) {
	forceBackend := func(b tensor.Backend) func() {
		prev := tensor.ActiveBackend()
		tensor.SetBackend(b)
		return func() { tensor.SetBackend(prev) }
	}

	lc := LoadConfig{
		Requests:    200,
		Concurrency: 6,
		Arrival:     ClosedLoop{Think: 0.2, Seed: 3},
		Service:     AffineService{Base: 1, PerItem: 0.5},
		Inputs:      testInputs(16),
	}

	restore := forceBackend(tensor.BackendSerial)
	serial := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: 1}, lc)
	restore()

	restore = forceBackend(tensor.BackendInt8)
	q := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: 1}, lc)
	again := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: 1}, lc)
	requireSameReport(t, q, again, "int8 reruns")
	for _, intraop := range []int{2, 4, 8} {
		got := mustLoad(t, Config{MaxBatch: 4, BatchBudget: 0.3, Workers: 2, IntraOp: intraop}, lc)
		requireSameReport(t, q, got, "int8 intraop")
	}
	restore()

	if serial.VirtualTime != q.VirtualTime || serial.Batches != q.Batches ||
		serial.Requests != q.Requests || !serial.Hist.Equal(&q.Hist) {
		t.Fatalf("schedule depends on kernel backend: serial %+v vs int8 %+v", serial, q)
	}

	inputs := testInputs(16)
	infer := func(b tensor.Backend, x *tensor.Tensor) []float32 {
		restore := forceBackend(b)
		defer restore()
		rep := nn.NewReplica(testBuilder(), 1)
		if err := rep.Ensure(0, testWeights(t)); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), rep.Infer(tensor.FromSlice(x.Data(), 1, 1, 8, 8)).Data()...)
	}
	for i, x := range inputs {
		so := infer(tensor.BackendSerial, x)
		qo := infer(tensor.BackendInt8, x)
		argmax := func(v []float32) int {
			best := 0
			for j := range v {
				if v[j] > v[best] {
					best = j
				}
			}
			return best
		}
		if argmax(so) != argmax(qo) {
			t.Fatalf("input %d: int8 argmax %d != serial argmax %d (%v vs %v)", i, argmax(qo), argmax(so), qo, so)
		}
		for j := range so {
			mag := so[j]
			if mag < 0 {
				mag = -mag
			}
			if mag < 1 {
				mag = 1
			}
			if d := so[j] - qo[j]; d > tensor.Int8Tol*mag || d < -tensor.Int8Tol*mag {
				t.Fatalf("input %d output[%d]: int8 %v vs serial %v exceeds tolerance", i, j, qo[j], so[j])
			}
		}
	}
}

// ParseArrival specs round-trip and bad specs fail loudly.
func TestParseArrival(t *testing.T) {
	m, err := ParseArrival("closed:0.5", 3)
	if err != nil {
		t.Fatal(err)
	}
	if cl, ok := m.(ClosedLoop); !ok || cl.Think != 0.5 || cl.Seed != 3 || !m.Closed() {
		t.Fatalf("closed:0.5 parsed to %#v", m)
	}
	m, err = ParseArrival("open:12", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ol, ok := m.(OpenLoop); !ok || ol.Rate != 12 || m.Closed() {
		t.Fatalf("open:12 parsed to %#v", m)
	}
	for _, bad := range []string{"open:0", "open:-1", "closed:-2", "uniform:1", "open:x"} {
		if _, err := ParseArrival(bad, 1); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}
