// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness builds its workload from the simulated
// device population, runs the training protocol, and returns a result whose
// String() renders the same rows/series the paper reports.
//
// Every harness accepts Options with a Scale knob: Scale=1 is the intended
// reproduction size (minutes on a laptop CPU), small scales (0.1-0.3) run in
// seconds and preserve trends, and the unit tests use the small end.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/device"
	"heteroswitch/internal/faults"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/models"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/parallel"
	"heteroswitch/internal/scene"
	"heteroswitch/internal/simclock"
)

// Options control workload sizing shared by all harnesses.
type Options struct {
	// Scale multiplies sample counts, epochs, and rounds. 1.0 reproduces the
	// recorded EXPERIMENTS.md numbers.
	Scale float64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds parallel client training and parallel device capture.
	Workers int
	// OutRes is the model input resolution.
	OutRes int
	// DisableStreaming forces the legacy barrier aggregation in every
	// harness (fl.Config.DisableStreaming): all K client snapshots are
	// materialized before aggregating. The streaming shard-parallel path is
	// the default; this is the A/B knob for memory/latency comparisons.
	DisableStreaming bool
	// IntraOp is the total intra-op kernel parallelism budget
	// (fl.Config.IntraOp): cores the tensor kernels may occupy across all
	// client workers combined. 0 = auto (GOMAXPROCS, split evenly across
	// Workers); 1 = serial kernels. Results are bit-identical at every
	// setting.
	IntraOp int
	// Async selects asynchronous staleness-aware aggregation for the
	// FL-driving harnesses.
	Async AsyncOptions
	// KernelBackend selects the matmul backend behind the frozen eval
	// path's fused kernels (tensor.ParseBackend values: "auto" picks packed
	// when profitable, "serial" forces the bit-identical oracle kernels,
	// "packed" forces the cache-blocked kernel, "int8" forces the quantized
	// weight-stationary kernel at its documented tolerance; "" inherits the
	// process-wide selection). Training kernels never dispatch. Applied
	// process-wide by Run.
	KernelBackend string
	// Faults is a faults.ParseSpec chaos spec ("crash:P", "flaky:P,R",
	// "corrupt:P,MODE", "churn:PERIOD,ON", "+"-combined) injected into every
	// FL harness; "" or "none" runs fault-free. Crash/flaky/churn models need
	// the async engine (Options.Async plus a timeout for crash/flaky).
	Faults string
	// MaxDeltaNorm is the update-validation gate (fl.Config.MaxDeltaNorm):
	// client deltas with non-finite values or L2 norm beyond it are rejected
	// before aggregation. 0 keeps the gate off unless Faults is set, in
	// which case it defaults to +Inf (reject non-finite only).
	MaxDeltaNorm float64
}

// AsyncOptions configure the asynchronous aggregation path (fl.AsyncServer on
// a simclock virtual-time simulation). The zero value keeps every harness
// synchronous.
type AsyncOptions struct {
	// Enabled switches RunFL/RunFLWithLoss to the asynchronous server for
	// strategies that can stream; barrier-only strategies (q-FedAvg,
	// SCAFFOLD) silently keep the synchronous round loop, mirroring how
	// DisableStreaming is a per-capability knob.
	Enabled bool
	// StalenessAlpha is the polynomial discount exponent 1/(1+s)^α; 0
	// disables discounting.
	StalenessAlpha float64
	// LatencyModel is a simclock.ParseModel spec (zero, const:D,
	// uniform:LO,HI, straggler:LO,HI,P,FACTOR); "" means zero latency.
	LatencyModel string
	// Depth is the in-flight pipeline depth as a multiple of each harness's
	// K: aggregation windows fold K results while Depth×K jobs stay in
	// flight. 0 or 1 means no window overlap — and therefore no staleness.
	Depth int
	// Timeout, RetryBackoff and MaxAttempts configure per-job virtual-time
	// timeouts with deterministic reissue (fl.AsyncConfig fields of the same
	// names); Timeout 0 disables timeouts, the pre-fault behavior.
	Timeout      float64
	RetryBackoff float64
	MaxAttempts  int
	// MaxStaleness drops results staler than this many windows instead of
	// folding them (fl.AsyncConfig.MaxStaleness). 0 folds everything.
	MaxStaleness int
}

// Config resolves the options into an fl.AsyncConfig for a harness whose
// round size is k, seeding the latency model from seed.
func (a AsyncOptions) Config(k int, seed uint64) (fl.AsyncConfig, error) {
	lat, err := simclock.ParseModel(a.LatencyModel, seed)
	if err != nil {
		return fl.AsyncConfig{}, err
	}
	depth := max(a.Depth, 1)
	return fl.AsyncConfig{
		Staleness:    fl.PolynomialStaleness{Alpha: a.StalenessAlpha},
		Latency:      lat,
		Concurrency:  depth * k,
		Buffer:       k,
		Timeout:      a.Timeout,
		RetryBackoff: a.RetryBackoff,
		MaxAttempts:  a.MaxAttempts,
		MaxStaleness: a.MaxStaleness,
	}, nil
}

// applyRobustness resolves the fault-injection and validation-gate options
// into cfg. A configured fault model defaults the gate to +Inf (reject
// non-finite updates) so injected corruption can never silently poison the
// global model; an explicit MaxDeltaNorm always wins.
func (o Options) applyRobustness(cfg *fl.Config) error {
	m, err := faults.ParseSpec(o.Faults, cfg.Seed)
	if err != nil {
		return err
	}
	cfg.Faults = m
	cfg.MaxDeltaNorm = o.MaxDeltaNorm
	if m != nil && cfg.MaxDeltaNorm == 0 {
		cfg.MaxDeltaNorm = math.Inf(1)
	}
	return nil
}

// DefaultOptions returns the standard configuration (Scale 1).
func DefaultOptions() Options {
	w := runtime.NumCPU() - 1
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return Options{Scale: 1, Seed: 42, Workers: w, OutRes: 32}
}

// IntraOpBudget returns the kernel budget for single-client training and
// evaluation paths: the explicit IntraOp option when set, otherwise the full
// machine (there is no worker parallelism to share it with).
func (o Options) IntraOpBudget() int {
	if o.IntraOp > 0 {
		return o.IntraOp
	}
	return parallel.Workers()
}

// scaled returns max(1, round(n*Scale)).
func (o Options) scaled(n int) int {
	v := int(float64(n)*o.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// DeviceData is the captured federation workload: every Table-1 device's
// train and test datasets, derived from SHARED latent scenes (the paper's
// controlled collection protocol).
type DeviceData struct {
	Profiles []*device.Profile
	Train    map[int]*dataset.Dataset
	Test     map[int]*dataset.Dataset
	Classes  int
}

// DeviceIndex returns the index of the named profile, or -1.
func (dd *DeviceData) DeviceIndex(name string) int {
	for i, p := range dd.Profiles {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// AllTest concatenates every device's test set.
func (dd *DeviceData) AllTest() *dataset.Dataset {
	parts := make([]*dataset.Dataset, len(dd.Profiles))
	for i := range dd.Profiles {
		parts[i] = dd.Test[i]
	}
	return dataset.Concat(parts...)
}

// BuildDeviceData renders perClassTrain+perClassTest scenes per class and
// captures them with every Table-1 device (in parallel across devices).
func BuildDeviceData(opts Options, perClassTrain, perClassTest int, mode dataset.CaptureMode) (*DeviceData, error) {
	gen := scene.NewImageNet12(64)
	rng := frand.New(opts.Seed)
	trainScenes := gen.RenderSet(perClassTrain, rng.SplitNamed("train-scenes"))
	testScenes := gen.RenderSet(perClassTest, rng.SplitNamed("test-scenes"))
	profiles := device.Profiles()

	dd := &DeviceData{
		Profiles: profiles,
		Train:    map[int]*dataset.Dataset{},
		Test:     map[int]*dataset.Dataset{},
		Classes:  gen.NumClasses(),
	}
	type result struct {
		idx      int
		tr, te   *dataset.Dataset
		captured error
	}
	results := make([]result, len(profiles))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(opts.Workers, 1))
	for i, p := range profiles {
		wg.Add(1)
		go func(i int, p *device.Profile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			crng := frand.New(opts.Seed ^ uint64(i+1)*0x9e3779b97f4a7c15)
			tr, err := dataset.Capture(trainScenes, p, i, mode, opts.OutRes, gen.NumClasses(), crng)
			if err != nil {
				results[i] = result{idx: i, captured: err}
				return
			}
			te, err := dataset.Capture(testScenes, p, i, mode, opts.OutRes, gen.NumClasses(), crng)
			results[i] = result{idx: i, tr: tr, te: te, captured: err}
		}(i, p)
	}
	wg.Wait()
	for _, r := range results {
		if r.captured != nil {
			return nil, r.captured
		}
		dd.Train[r.idx] = r.tr
		dd.Test[r.idx] = r.te
	}
	return dd, nil
}

// TrainCentralized runs plain minibatch SGD for the given epochs — the
// single-device training used by the characterization experiments (§3). As
// a single-client path it defaults the network to the full intra-op budget
// (the parallel kernels are bit-identical to serial, so this only changes
// speed); a budget the caller already granted — e.g. from
// Options.IntraOpBudget, which honors -intraop — is left alone.
func TrainCentralized(net *nn.Network, ds *dataset.Dataset, epochs, batch int, lr float64, rng *frand.RNG) {
	cfg := fl.Config{
		Rounds: 1, ClientsPerRound: 1,
		BatchSize: batch, LocalEpochs: epochs, LR: lr, Workers: 1,
	}
	if net.IntraOp() == 0 {
		net.SetIntraOp(parallel.Workers())
	}
	fl.TrainLocal(net, ds, cfg, nn.SoftmaxCrossEntropy{}, rng, nil, nil)
}

// SimpleCNNBuilder is the characterization model builder (fast; the paper's
// trends do not depend on architecture for §3-4, and §6.3/Table 5 covers the
// architecture axis explicitly).
func SimpleCNNBuilder(seed uint64, classes int) models.Builder {
	b, err := models.BuilderFor(models.ArchSimpleCNN, seed, 3, classes)
	if err != nil {
		panic(err)
	}
	return b
}

// MobileNetBuilder is the §6 default model builder.
func MobileNetBuilder(seed uint64, classes int) models.Builder {
	b, err := models.BuilderFor(models.ArchMobileNet, seed, 3, classes)
	if err != nil {
		panic(err)
	}
	return b
}

// MarketShareCounts allocates n clients to the Table-1 devices by market
// share.
func MarketShareCounts(dd *DeviceData, n int) []int {
	return fl.DeviceCounts(device.MarketShares(dd.Profiles), n)
}

// EqualCounts allocates n clients evenly across devices (used by the DG
// experiments where every device participates equally).
func EqualCounts(numDevices, n int) []int {
	counts := make([]int, numDevices)
	for i := 0; i < n; i++ {
		counts[i%numDevices]++
	}
	return counts
}

// Trainer is the surface the harnesses consume after federated training —
// satisfied by both fl.Server and fl.AsyncServer, so every harness runs
// unchanged under Options.Async.
type Trainer interface {
	GlobalNet() *nn.Network
}

// RunFL builds a population from dd.Train according to counts, runs the
// strategy for cfg.Rounds (synchronously, or on the async server when
// opts.Async.Enabled and the strategy streams), and returns the trained
// server.
func RunFL(opts Options, strategy fl.Strategy, dd *DeviceData, counts []int, cfg fl.Config, builder models.Builder) (Trainer, error) {
	return RunFLWithLoss(opts, strategy, dd.Train, counts, cfg, builder, nn.SoftmaxCrossEntropy{})
}

// RunFLWithLoss is RunFL with an explicit per-device dataset map and loss
// (the multi-label and regression experiments use BCE / MSE).
func RunFLWithLoss(opts Options, strategy fl.Strategy, perDevice map[int]*dataset.Dataset, counts []int,
	cfg fl.Config, builder models.Builder, loss nn.Loss) (Trainer, error) {
	clients, err := fl.BuildPopulation(perDevice, counts, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.ClientsPerRound > len(clients) {
		cfg.ClientsPerRound = len(clients)
	}
	if err := opts.applyRobustness(&cfg); err != nil {
		return nil, err
	}
	if _, streams := strategy.(fl.StreamingAggregator); opts.Async.Enabled && streams {
		async, err := opts.Async.Config(cfg.ClientsPerRound, cfg.Seed)
		if err != nil {
			return nil, err
		}
		srv, err := fl.NewAsyncServer(cfg, builder, loss, strategy, clients, async)
		if err != nil {
			return nil, err
		}
		srv.Run(nil)
		return srv, nil
	}
	srv, err := fl.NewServer(cfg, builder, loss, strategy, clients)
	if err != nil {
		return nil, err
	}
	srv.Run(nil)
	return srv, nil
}

// deviceProfiles returns the Table-1 profiles (alias kept local so harness
// files read naturally).
func deviceProfiles() []*device.Profile { return device.Profiles() }

// newSceneGen returns the 12-class scene generator at capture resolution.
func newSceneGen() *scene.Generator { return scene.NewImageNet12(64) }

// PerDeviceAccuracies evaluates the network on each device's test set,
// returning accuracies indexed by device.
func PerDeviceAccuracies(net *nn.Network, dd *DeviceData, batch int) map[int]float64 {
	out := map[int]float64{}
	for i := range dd.Profiles {
		out[i] = metrics.Accuracy(net, dd.Test[i], batch)
	}
	return out
}

// Table rendering -------------------------------------------------------------

// Table is a minimal text table used by all result printers.
type Table struct {
	Title   string
	Header  []string
	RowData [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.RowData = append(t.RowData, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.RowData {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.RowData {
		line(row)
	}
	return b.String()
}

// pct formats a fraction as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// sortedKeys returns the sorted keys of an int-keyed map.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// lossCE returns the standard classification loss (helper so harness files
// read declaratively).
func lossCE() nn.Loss { return nn.SoftmaxCrossEntropy{} }
