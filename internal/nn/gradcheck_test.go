package nn

import (
	"math"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// lossOf computes the probe loss L = <forward(x), R> used for gradient
// checking: its exact output-gradient is R.
func lossOf(l Layer, x, r *tensor.Tensor) float64 {
	return l.Forward(x, true).Dot(r)
}

// checkGrads numerically verifies dL/dx and all dL/dparam for layer l on
// input x. It checks up to maxCoords coordinates per tensor.
func checkGrads(t *testing.T, l Layer, x *tensor.Tensor, seed uint64, maxCoords int) {
	t.Helper()
	rng := frand.New(seed)
	out := l.Forward(x.Clone(), true)
	r := tensor.Randn(rng, 1, out.Shape()...)

	for _, p := range l.Params() {
		p.Grad.Zero()
	}
	xin := x.Clone()
	_ = l.Forward(xin, true)
	dx := l.Backward(r)

	const eps = 1e-2
	approxEq := func(analytic, numeric float64) bool {
		diff := math.Abs(analytic - numeric)
		scale := math.Max(math.Abs(analytic), math.Abs(numeric))
		return diff <= 2e-2+5e-2*scale
	}

	// Check input gradient on sampled coordinates.
	coords := sampleCoords(rng, x.Size(), maxCoords)
	for _, c := range coords {
		orig := x.Data()[c]
		x.Data()[c] = orig + eps
		lp := lossOf(l, x.Clone(), r)
		x.Data()[c] = orig - eps
		lm := lossOf(l, x.Clone(), r)
		x.Data()[c] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dx.Data()[c])
		if !approxEq(analytic, numeric) {
			t.Fatalf("%s: input grad[%d] analytic %.5f vs numeric %.5f", l.Name(), c, analytic, numeric)
		}
	}

	// Check parameter gradients.
	for pi, p := range l.Params() {
		coords := sampleCoords(rng, p.W.Size(), maxCoords)
		for _, c := range coords {
			orig := p.W.Data()[c]
			p.W.Data()[c] = orig + eps
			lp := lossOf(l, x.Clone(), r)
			p.W.Data()[c] = orig - eps
			lm := lossOf(l, x.Clone(), r)
			p.W.Data()[c] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.Grad.Data()[c])
			if !approxEq(analytic, numeric) {
				t.Fatalf("%s: param %d (%s) grad[%d] analytic %.5f vs numeric %.5f",
					l.Name(), pi, p.Name, c, analytic, numeric)
			}
		}
	}
}

func sampleCoords(r *frand.RNG, n, k int) []int {
	if n <= k {
		return r.Perm(n)
	}
	return r.Choice(n, k)
}

func TestDenseGrad(t *testing.T) {
	r := frand.New(1)
	l := NewDense(r, 7, 5)
	x := tensor.Randn(r, 1, 4, 7)
	checkGrads(t, l, x, 2, 20)
}

func TestConv2DGrad(t *testing.T) {
	r := frand.New(3)
	l := NewConv2D(r, 3, 4, 3, 1, 1, 1)
	x := tensor.Randn(r, 1, 2, 3, 6, 6)
	checkGrads(t, l, x, 4, 20)
}

func TestConv2DStride2Grad(t *testing.T) {
	r := frand.New(5)
	l := NewConv2D(r, 2, 6, 3, 2, 1, 1)
	x := tensor.Randn(r, 1, 2, 2, 8, 8)
	checkGrads(t, l, x, 6, 20)
}

func TestGroupConvGrad(t *testing.T) {
	r := frand.New(7)
	l := NewConv2D(r, 4, 8, 3, 1, 1, 2)
	x := tensor.Randn(r, 1, 2, 4, 5, 5)
	checkGrads(t, l, x, 8, 20)
}

func TestDepthwiseConvGrad(t *testing.T) {
	r := frand.New(9)
	l := NewDepthwiseConv2D(r, 5, 3, 1, 1)
	x := tensor.Randn(r, 1, 2, 5, 6, 6)
	checkGrads(t, l, x, 10, 20)
}

func TestReLUGrad(t *testing.T) {
	r := frand.New(11)
	// Keep values away from the kink at 0 for clean finite differences.
	x := tensor.Randn(r, 1, 3, 10)
	x.Apply(func(v float32) float32 {
		if v >= 0 && v < 0.1 {
			return v + 0.15
		}
		if v < 0 && v > -0.1 {
			return v - 0.15
		}
		return v
	})
	checkGrads(t, NewReLU(), x, 12, 30)
}

func TestHardSwishGrad(t *testing.T) {
	r := frand.New(13)
	x := tensor.Randn(r, 1.5, 3, 10)
	// Nudge values away from the kinks at ±3 and scale boundary effects.
	x.Apply(func(v float32) float32 {
		for _, k := range []float32{-3, 3} {
			if v > k-0.1 && v < k+0.1 {
				return v + 0.25
			}
		}
		return v
	})
	checkGrads(t, NewHardSwish(), x, 14, 30)
}

func TestSigmoidGrad(t *testing.T) {
	r := frand.New(15)
	x := tensor.Randn(r, 1, 3, 8)
	checkGrads(t, NewSigmoid(), x, 16, 24)
}

func TestBatchNormGrad(t *testing.T) {
	r := frand.New(17)
	l := NewBatchNorm2D(3)
	// Non-trivial gamma/beta so their gradients are exercised.
	for i, v := range []float32{1.2, 0.8, 1.5} {
		l.Gamma.W.Data()[i] = v
	}
	for i, v := range []float32{0.1, -0.2, 0.3} {
		l.Beta.W.Data()[i] = v
	}
	x := tensor.Randn(r, 1, 4, 3, 5, 5)
	checkGrads(t, l, x, 18, 20)
}

func TestMaxPoolGrad(t *testing.T) {
	r := frand.New(19)
	l := NewMaxPool2D(2, 2)
	x := tensor.Randn(r, 1, 2, 2, 6, 6)
	checkGrads(t, l, x, 20, 30)
}

func TestAvgPoolGrad(t *testing.T) {
	r := frand.New(21)
	l := NewAvgPool2D(2, 2)
	x := tensor.Randn(r, 1, 2, 2, 6, 6)
	checkGrads(t, l, x, 22, 30)
}

func TestGlobalAvgPoolGrad(t *testing.T) {
	r := frand.New(23)
	x := tensor.Randn(r, 1, 2, 3, 4, 4)
	checkGrads(t, NewGlobalAvgPool(), x, 24, 30)
}

func TestResidualGrad(t *testing.T) {
	r := frand.New(25)
	body := NewNetwork(
		NewConv2D(r, 3, 3, 3, 1, 1, 1),
		NewReLU(),
	)
	l := NewResidual(body, nil)
	x := tensor.Randn(r, 1, 2, 3, 5, 5)
	checkGrads(t, l, x, 26, 20)
}

func TestResidualProjGrad(t *testing.T) {
	r := frand.New(27)
	body := NewConv2D(r, 2, 4, 3, 1, 1, 1)
	proj := NewConv2D(r, 2, 4, 1, 1, 0, 1)
	l := NewResidual(body, proj)
	x := tensor.Randn(r, 1, 2, 2, 4, 4)
	checkGrads(t, l, x, 28, 20)
}

func TestParallelConcatGrad(t *testing.T) {
	r := frand.New(29)
	l := NewParallel(false,
		NewConv2D(r, 3, 2, 1, 1, 0, 1),
		NewConv2D(r, 3, 3, 3, 1, 1, 1),
	)
	x := tensor.Randn(r, 1, 2, 3, 4, 4)
	checkGrads(t, l, x, 30, 20)
}

func TestParallelSplitGrad(t *testing.T) {
	r := frand.New(31)
	l := NewParallel(true,
		NewIdentity(),
		NewConv2D(r, 2, 2, 3, 1, 1, 1),
	)
	x := tensor.Randn(r, 1, 2, 4, 4, 4)
	checkGrads(t, l, x, 32, 20)
}

func TestSEBlockGrad(t *testing.T) {
	r := frand.New(33)
	l := NewSEBlock(r, 4, 2)
	x := tensor.Randn(r, 1, 2, 4, 4, 4)
	checkGrads(t, l, x, 34, 20)
}

func TestChannelShuffleGrad(t *testing.T) {
	r := frand.New(35)
	l := NewChannelShuffle(2)
	x := tensor.Randn(r, 1, 2, 4, 3, 3)
	checkGrads(t, l, x, 36, 20)
}

// TestNetworkCompositeGrad uses smooth layers only (Sigmoid, AvgPool): the
// piecewise-linear layers have kinks that make finite differences unreliable
// when composed, and each has its own dedicated gradient check above.
func TestNetworkCompositeGrad(t *testing.T) {
	r := frand.New(37)
	net := NewNetwork(
		NewConv2D(r, 1, 4, 3, 1, 1, 1),
		NewBatchNorm2D(4),
		NewSigmoid(),
		NewAvgPool2D(2, 2),
		NewFlatten(),
		NewDense(r, 4*3*3, 5),
	)
	x := tensor.Randn(r, 1, 2, 1, 6, 6)
	checkGrads(t, net, x, 38, 15)
}
