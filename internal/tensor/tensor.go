// Package tensor implements dense row-major float32 tensors and the numeric
// kernels (elementwise ops, blocked matrix multiply, im2col) that the neural
// network stack in internal/nn is built on.
//
// Tensors are deliberately simple: a shape and a flat []float32 buffer.
// Layout is row-major (C order); images use NCHW. Most operations come in an
// allocating form and an in-place/into form so hot training loops can reuse
// buffers.
//
// Shape errors are programmer errors, so the hot-path kernels panic on
// mismatched shapes rather than returning errors; public entry points in
// higher layers validate dimensions up front.
package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"heteroswitch/internal/frand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor with the given shape. A zero-dimensional
// call (no arguments) produces a scalar tensor of size 1.
//
// Only the copied shape slice `s` is referenced below (including in the
// panic message): referencing the variadic parameter from an escaping
// context would force every caller to heap-allocate its shape literal, which
// matters for the arena fast path.
func New(shape ...int) *Tensor {
	s := make([]int, len(shape))
	copy(s, shape)
	n := 1
	for _, d := range s {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, s))
		}
		n *= d
	}
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps the given data in a tensor of the given shape. The data is
// NOT copied; the tensor aliases it. It panics if len(data) does not match
// the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: FromSlice data length %d != shape %v size %d", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Randn fills a new tensor with N(0, std) variates from r.
func Randn(r *frand.RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64() * std)
	}
	return t
}

// RandUniform fills a new tensor with Uniform(lo, hi) variates from r.
func RandUniform(r *frand.RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.Uniform(lo, hi))
	}
	return t
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying flat buffer. Mutations are visible to the
// tensor. Row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a view of t with a new shape of the same total size. The
// view shares data with t. One dimension may be -1 to infer its size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	return t.ReshapeInto(nil, shape...)
}

// ReshapeInto is Reshape with header recycling: when view is non-nil, its
// header and shape slice are reused instead of allocating a fresh view, and
// view is repointed at t's data. Reshape-style layers call it with a cached
// header so per-batch view changes cost no allocation. The returned tensor
// (view itself when non-nil) aliases t's data; any previous aliasing of view
// is overwritten.
func (t *Tensor) ReshapeInto(view *Tensor, shape ...int) *Tensor {
	if view == nil {
		view = &Tensor{}
	}
	if cap(view.shape) >= len(shape) {
		view.shape = view.shape[:len(shape)]
	} else {
		view.shape = make([]int, len(shape))
	}
	// Error paths reference the copied view.shape, not the variadic
	// parameter, so callers' shape literals stay on the stack.
	n, infer := 1, -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with multiple -1 dims")
			}
			infer = i
		} else {
			n *= d
		}
		view.shape[i] = d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim for reshape %v of size %d", view.shape, len(t.data)))
		}
		view.shape[infer] = len(t.data) / n
		n *= view.shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with size %d", view.shape, len(t.data)))
	}
	view.data = t.data
	return view
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies o's data into t. Panics on shape-size mismatch.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.data, o.data)
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// String renders a short description (shape + a few leading values).
func (t *Tensor) String() string {
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:n])
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// WriteTo serializes the tensor (shape + raw little-endian float32 data).
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var written int64
	hdr := make([]byte, 4+4*len(t.shape))
	binary.LittleEndian.PutUint32(hdr, uint32(len(t.shape)))
	for i, d := range t.shape {
		binary.LittleEndian.PutUint32(hdr[4+4*i:], uint32(d))
	}
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	buf := make([]byte, 4*len(t.data))
	for i, v := range t.data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	n, err = w.Write(buf)
	written += int64(n)
	return written, err
}

// ReadFrom deserializes a tensor previously written with WriteTo, replacing
// t's shape and contents.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var read int64
	var ndims [4]byte
	n, err := io.ReadFull(r, ndims[:])
	read += int64(n)
	if err != nil {
		return read, err
	}
	nd := int(binary.LittleEndian.Uint32(ndims[:]))
	if nd > 8 {
		return read, fmt.Errorf("tensor: implausible ndim %d", nd)
	}
	shapeBuf := make([]byte, 4*nd)
	n, err = io.ReadFull(r, shapeBuf)
	read += int64(n)
	if err != nil {
		return read, err
	}
	shape := make([]int, nd)
	size := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(shapeBuf[4*i:]))
		size *= shape[i]
	}
	buf := make([]byte, 4*size)
	n, err = io.ReadFull(r, buf)
	read += int64(n)
	if err != nil {
		return read, err
	}
	data := make([]float32, size)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	t.shape = shape
	t.data = data
	return read, nil
}
